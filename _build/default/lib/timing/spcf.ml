let floating_delays g bits =
  let words = Array.map (fun b -> if b then -1L else 0L) bits in
  let values = Aig.sim g words in
  let value_of l =
    let w = values.(Aig.node_of_lit l) in
    let b = Int64.logand w 1L = 1L in
    if Aig.is_complemented l then not b else b
  in
  let nn = Aig.num_nodes g in
  let delay = Array.make nn 0 in
  for id = 1 to nn - 1 do
    if Aig.is_and g id then begin
      let f0, f1 = Aig.fanins g id in
      let v0 = value_of f0 and v1 = value_of f1 in
      let d0 = delay.(Aig.node_of_lit f0) and d1 = delay.(Aig.node_of_lit f1) in
      delay.(id) <-
        (match (v0, v1) with
         | false, false -> 1 + min d0 d1
         | false, true -> 1 + d0
         | true, false -> 1 + d1
         | true, true -> 1 + max d0 d1)
    end
  done;
  delay

let exact g ~out ~delta =
  let ni = Aig.num_inputs g in
  assert (ni <= 16);
  let _, ol = List.nth (Aig.outputs g) out in
  let oid = Aig.node_of_lit ol in
  let minterms = ref [] in
  for m = 0 to (1 lsl ni) - 1 do
    let bits = Array.init ni (fun i -> (m lsr i) land 1 = 1) in
    let delay = floating_delays g bits in
    if delay.(oid) >= delta then minterms := m :: !minterms
  done;
  Logic.Tt.of_minterms ni !minterms

let boolean_difference man net globals ~wrt ~out =
  let oid = out.Network.node in
  (* Fresh variable standing for the value of node [wrt]; placed past all
     existing variables so it sits at the bottom of the order. *)
  let vid = Bdd.num_vars man + 1 in
  let v = Bdd.var man vid in
  let cone = Network.cone net oid in
  let altered = Hashtbl.create 64 in
  Hashtbl.replace altered wrt v;
  List.iter
    (fun id ->
      if (not (Hashtbl.mem altered id)) && not (Network.is_input net id) then begin
        let nd = Network.node net id in
        if Array.exists (Hashtbl.mem altered) nd.Network.fanins then begin
          let args =
            Array.map
              (fun f ->
                match Hashtbl.find_opt altered f with
                | Some b -> b
                | None -> globals.(f))
              nd.Network.fanins
          in
          Hashtbl.replace altered id (Bdd.apply_tt man nd.Network.func args)
        end
      end)
    cone;
  match Hashtbl.find_opt altered oid with
  | None -> Bdd.bfalse man (* output does not depend on [wrt] *)
  | Some y ->
    Bdd.bxor man (Bdd.restrict man y vid false) (Bdd.restrict man y vid true)

let approx man net globals ~levels ~out ~delta ?(max_nodes = 24) () =
  let oid = out.Network.node in
  let cone = Network.cone net oid in
  (* Longest level-weighted distance from each cone node to the output. *)
  let fo = Network.fanouts net in
  let rdepth = Hashtbl.create 64 in
  Hashtbl.replace rdepth oid 0;
  List.iter
    (fun id ->
      if id <> oid then begin
        let best = ref min_int in
        List.iter
          (fun o ->
            match Hashtbl.find_opt rdepth o with
            | Some d -> best := max !best (d + max 0 (levels.(o) - levels.(id)))
            | None -> ())
          fo.(id);
        if !best > min_int then Hashtbl.replace rdepth id !best
      end)
    (List.rev cone);
  let late =
    List.filter
      (fun id ->
        (not (Network.is_input net id))
        &&
        match Hashtbl.find_opt rdepth id with
        | Some d -> levels.(id) + d >= delta
        | None -> false)
      cone
  in
  (* Deepest nodes first; cap the union for efficiency. *)
  let late =
    List.sort (fun a b -> compare levels.(b) levels.(a)) late
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  let late = take max_nodes late in
  List.fold_left
    (fun acc id ->
      Bdd.bor man acc (boolean_difference man net globals ~wrt:id ~out))
    (Bdd.bfalse man) late
