type report = { arrival : int array; required : int array; depth : int }

let analyze g =
  let arrival = Aig.levels g in
  let nn = Aig.num_nodes g in
  let depth =
    List.fold_left
      (fun acc (_, l) -> max acc arrival.(Aig.node_of_lit l))
      0 (Aig.outputs g)
  in
  let required = Array.make nn max_int in
  List.iter
    (fun (_, l) ->
      let id = Aig.node_of_lit l in
      required.(id) <- min required.(id) depth)
    (Aig.outputs g);
  for id = nn - 1 downto 1 do
    if Aig.is_and g id && required.(id) < max_int then begin
      let f0, f1 = Aig.fanins g id in
      let relax l =
        let c = Aig.node_of_lit l in
        required.(c) <- min required.(c) (required.(id) - 1)
      in
      relax f0;
      relax f1
    end
  done;
  { arrival; required; depth }

let critical_nodes g r =
  List.filter
    (fun id ->
      r.required.(id) < max_int && r.arrival.(id) = r.required.(id))
    (List.init (Aig.num_nodes g) Fun.id)

let critical_path g r =
  (* Walk down from a deepest output following a max-arrival fanin. *)
  let start =
    List.fold_left
      (fun acc (_, l) ->
        let id = Aig.node_of_lit l in
        match acc with
        | Some best when r.arrival.(best) >= r.arrival.(id) -> acc
        | _ -> Some id)
      None (Aig.outputs g)
  in
  match start with
  | None -> []
  | Some id ->
    let rec walk id acc =
      let acc = id :: acc in
      if Aig.is_and g id then begin
        let f0, f1 = Aig.fanins g id in
        let c0 = Aig.node_of_lit f0 and c1 = Aig.node_of_lit f1 in
        walk (if r.arrival.(c0) >= r.arrival.(c1) then c0 else c1) acc
      end
      else acc
    in
    walk id []

let critical_outputs g r =
  List.filter
    (fun (_, l) -> r.arrival.(Aig.node_of_lit l) = r.depth)
    (Aig.outputs g)
