(** Static timing analysis over AIGs (unit gate delay).

    Arrival times are the AIG levels; required times propagate backwards
    from the circuit depth. Nodes with zero slack form the critical
    sub-network the paper's optimization targets. *)

type report = {
  arrival : int array;  (** per node id *)
  required : int array;  (** per node id; [max_int] for unreachable logic *)
  depth : int;
}

val analyze : Aig.t -> report

(** Node ids with zero slack (arrival = required), topological order. *)
val critical_nodes : Aig.t -> report -> int list

(** One critical path from an input to the deepest output, as node ids. *)
val critical_path : Aig.t -> report -> int list

(** Outputs whose cone contains a path of the full circuit depth. *)
val critical_outputs : Aig.t -> report -> (string * Aig.lit) list
