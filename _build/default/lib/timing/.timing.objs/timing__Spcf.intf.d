lib/timing/spcf.mli: Aig Bdd Logic Network
