lib/timing/spcf.ml: Aig Array Bdd Hashtbl Int64 List Logic Network
