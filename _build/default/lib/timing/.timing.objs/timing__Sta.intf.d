lib/timing/sta.mli: Aig
