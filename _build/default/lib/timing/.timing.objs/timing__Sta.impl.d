lib/timing/sta.ml: Aig Array Fun List
