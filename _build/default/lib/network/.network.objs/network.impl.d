lib/network/network.ml: Globals Graph Levels
