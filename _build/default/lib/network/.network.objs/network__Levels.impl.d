lib/network/levels.ml: Array Fun Graph List Logic
