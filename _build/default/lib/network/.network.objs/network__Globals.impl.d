lib/network/globals.ml: Array Bdd Graph List Logic
