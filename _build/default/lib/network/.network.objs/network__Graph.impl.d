lib/network/graph.ml: Aig Array Format Fun Hashtbl Lazy List Logic
