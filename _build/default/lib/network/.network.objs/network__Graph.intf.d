lib/network/graph.mli: Aig Format Logic
