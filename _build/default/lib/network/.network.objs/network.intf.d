lib/network/network.mli: Globals Graph Levels
