lib/network/globals.mli: Bdd Graph Logic
