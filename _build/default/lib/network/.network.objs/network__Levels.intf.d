lib/network/levels.mli: Graph Logic
