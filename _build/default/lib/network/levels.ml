let tree_depth levels =
  let insert x l =
    let rec go = function
      | [] -> [ x ]
      | y :: rest -> if x <= y then x :: y :: rest else y :: go rest
    in
    go l
  in
  let sorted = List.sort compare levels in
  let rec reduce = function
    | [] -> 0
    | [ d ] -> d
    | a :: b :: rest -> reduce (insert (1 + max a b) rest)
  in
  reduce sorted

let cube_depth cube ~fanin_level =
  tree_depth (List.map (fun (i, _) -> fanin_level i) (Logic.Cube.literals cube))

let sop_depth (sop : Logic.Sop.t) ~fanin_level =
  match sop.Logic.Sop.cubes with
  | [] -> 0
  | cubes -> tree_depth (List.map (fun c -> cube_depth c ~fanin_level) cubes)

let node_level net ~levels id =
  if Graph.is_input net id then 0
  else begin
    let nd = Graph.node net id in
    if Array.length nd.Graph.fanins = 0 then 0
    else if
      Logic.Tt.is_const_false nd.Graph.func
      || Logic.Tt.is_const_true nd.Graph.func
    then 0
    else begin
      let fanin_level i = levels.(nd.Graph.fanins.(i)) in
      let on, off = Logic.Minimize.min_sops nd.Graph.func in
      min (sop_depth on ~fanin_level) (sop_depth off ~fanin_level)
    end
  end

let compute net =
  let levels = Array.make (Graph.num_nodes net) 0 in
  List.iter (fun id -> levels.(id) <- node_level net ~levels id) (Graph.topo_order net);
  levels

let depth net =
  let levels = compute net in
  List.fold_left
    (fun acc (o : Graph.output) -> max acc levels.(o.Graph.node))
    0 (Graph.outputs net)

let output_levels net ~levels =
  List.map (fun (o : Graph.output) -> (o, levels.(o.Graph.node))) (Graph.outputs net)

let critical_inputs net ~levels id =
  if Graph.is_input net id then []
  else begin
    let nd = Graph.node net id in
    let k = Array.length nd.Graph.fanins in
    if k = 0 then []
    else begin
      let maxlev =
        Array.fold_left (fun acc f -> max acc levels.(f)) 0 nd.Graph.fanins
      in
      if maxlev = 0 then []
      else
        List.filter
          (fun i -> levels.(nd.Graph.fanins.(i)) = maxlev)
          (List.init k Fun.id)
    end
  end
