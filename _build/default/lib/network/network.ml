include Graph
module Levels = Levels
module Globals = Globals
