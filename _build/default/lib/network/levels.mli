(** Logic-level quantification for the technology-independent network
    (Sec. 3.1, "Quantifying logic levels in T").

    The level of a node is computed from the minimum SOP covers of its
    on-set and off-set: each prime-implicant cube contributes an optimal
    AND-tree depth over its literals' fanin levels; the cover contributes
    an optimal OR-tree over the cube depths; the node level is the
    smaller of the on-set and off-set values (the cheaper polarity).
    Optimal tree depth for a level multiset is obtained by always merging
    the two shallowest items (Huffman order). *)

(** [tree_depth levels] is the depth of an optimal binary tree whose
    leaves arrive at the given levels; [0] for the empty and singleton
    cases where no gate is needed. *)
val tree_depth : int list -> int

(** [sop_depth sop ~fanin_level] is the optimal OR-of-AND depth of a
    cover given the level of each SOP variable. *)
val sop_depth : Logic.Sop.t -> fanin_level:(int -> int) -> int

(** [node_level net ~levels id] is the level of node [id] given the
    levels of its fanins (read from [levels]). Inputs are level 0. *)
val node_level : Graph.t -> levels:int array -> int -> int

(** Levels of all nodes in topological order. *)
val compute : Graph.t -> int array

(** Level of the deepest output. *)
val depth : Graph.t -> int

(** [output_level net ~levels] per-output levels. *)
val output_levels : Graph.t -> levels:int array -> (Graph.output * int) list

(** [critical_inputs net ~levels id] are the fanin positions whose level
    reduction is a necessary condition for reducing the node's level —
    operationally, the positions carrying the maximum fanin level. When
    every fanin is at level 0 (the node's own structure dominates) no
    input is critical. *)
val critical_inputs : Graph.t -> levels:int array -> int -> int list
