examples/tool_compare.mli:
