examples/tool_compare.ml: Aig Array Baselines Circuits List Lookahead Printf Sys Techmap
