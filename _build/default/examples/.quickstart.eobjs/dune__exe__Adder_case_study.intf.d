examples/adder_case_study.mli:
