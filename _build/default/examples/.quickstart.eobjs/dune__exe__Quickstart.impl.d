examples/quickstart.ml: Aig Array Format Lookahead Printf Techmap
