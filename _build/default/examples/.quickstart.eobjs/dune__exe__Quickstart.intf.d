examples/quickstart.mli:
