examples/export_formats.ml: Aig Buffer Circuits Format Lookahead String Techmap
