examples/adder_case_study.ml: Aig Baselines Circuits List Logic Lookahead Printf
