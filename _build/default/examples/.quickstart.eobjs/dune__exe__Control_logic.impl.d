examples/control_logic.ml: Aig Array Bdd Circuits Format List Logic Lookahead Network Option Techmap Timing
