examples/export_formats.mli:
