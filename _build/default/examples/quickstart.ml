(* Quickstart: build a circuit with the AIG API, optimize it with the
   lookahead flow, inspect the result, and write it out as BLIF.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A small timing-skewed circuit: a long priority chain gated by two
     fast enables — the shape the lookahead decomposition targets. *)
  let g = Aig.create () in
  let req = Array.init 8 (fun i -> Aig.add_input ~name:(Printf.sprintf "r%d" i) g) in
  let pass = Array.init 8 (fun i -> Aig.add_input ~name:(Printf.sprintf "p%d" i) g) in
  let en = Aig.add_input ~name:"en" g in
  (* token = r_i or (p_i and token_{i-1}): a serial carry-like chain. *)
  let token = ref (Aig.band g req.(0) pass.(0)) in
  for i = 1 to 7 do
    token := Aig.bor g req.(i) (Aig.band g pass.(i) !token)
  done;
  Aig.add_output g "grant" (Aig.band g !token en);

  Format.printf "before: %a@." Aig.pp_stats g;

  (* Optimize. The driver discovers a window decomposition per critical
     output, verifies it with BDDs, and SAT-checks the final circuit. *)
  let optimized, stats = Lookahead.optimize_with_stats g in
  Format.printf "after : %a@." Aig.pp_stats optimized;
  Format.printf "depth %d -> %d in %d round(s), %d output(s) decomposed@."
    stats.Lookahead.Driver.initial_depth stats.Lookahead.Driver.final_depth
    stats.Lookahead.Driver.rounds_run stats.Lookahead.Driver.outputs_decomposed;

  (* Independent equivalence check (the driver already asserted one). *)
  (match Aig.Cec.check g optimized with
   | Aig.Cec.Equivalent -> Format.printf "equivalence: PASS@."
   | Aig.Cec.Counterexample _ -> Format.printf "equivalence: FAIL@.");

  (* Map to the 70nm library and report the Table 2 metrics. *)
  let netlist = Techmap.Mapper.map optimized in
  Format.printf "mapped: %d cells, %.1f area, %.1f ps, %.3f mW@."
    (Techmap.Mapper.num_gates netlist)
    (Techmap.Mapper.area netlist)
    (Techmap.Mapper.delay netlist)
    (Techmap.Power.dynamic_mw netlist);

  (* Export. *)
  print_string (Aig.Io.blif_to_string ~model:"quickstart" optimized)
