(* Round-trip a circuit through every supported interchange format and
   show the gate-level artifacts a downstream flow would consume.

   Run with: dune exec examples/export_formats.exe *)

let () =
  let g = Circuits.Adders.carry_select 4 in
  Format.printf "source: %a@.@." Aig.pp_stats g;

  (* BLIF round trip. *)
  let blif = Aig.Io.blif_to_string ~model:"csel4" g in
  let g_blif = Aig.Io.read_blif blif in
  Format.printf "BLIF       : %5d bytes, reparse equivalent: %b@."
    (String.length blif)
    (Aig.Cec.equivalent g g_blif);

  (* ASCII AIGER. *)
  let aag = Aig.Aiger.aag_to_string g in
  let g_aag = Aig.Aiger.read_aag aag in
  Format.printf "AIGER ascii: %5d bytes, reparse equivalent: %b@."
    (String.length aag)
    (Aig.Cec.equivalent g g_aag);

  (* Binary AIGER — the compact interchange format. *)
  let buf = Buffer.create 512 in
  Aig.Aiger.write_aig_binary buf g;
  let bin = Buffer.contents buf in
  let g_bin = Aig.Aiger.read_aig_binary bin in
  Format.printf "AIGER bin  : %5d bytes, reparse equivalent: %b@."
    (String.length bin)
    (Aig.Cec.equivalent g g_bin);

  (* BENCH. *)
  let bench_buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer bench_buf in
  Aig.Io.write_bench ppf g;
  Format.pp_print_flush ppf ();
  let g_bench = Aig.Io.read_bench (Buffer.contents bench_buf) in
  Format.printf "BENCH      : %5d bytes, reparse equivalent: %b@.@."
    (Buffer.length bench_buf)
    (Aig.Cec.equivalent g g_bench);

  (* Structural Verilog of the optimized circuit. *)
  let optimized = Lookahead.optimize g in
  Format.printf "-- structural Verilog (optimized, depth %d -> %d) --@.%s@."
    (Aig.depth g) (Aig.depth optimized)
    (Aig.Verilog.to_string ~module_name:"csel4_opt" optimized);

  (* Gate-level Verilog after technology mapping, plus its STA report. *)
  let netlist = Techmap.Mapper.map optimized in
  let report = Techmap.Sta.analyze netlist in
  Format.printf "-- mapped: %d cells, %.1f area --@."
    (Techmap.Mapper.num_gates netlist)
    (Techmap.Mapper.area netlist);
  Techmap.Sta.pp_report Format.std_formatter (netlist, report)
