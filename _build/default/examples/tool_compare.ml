(* Compare the four optimizers on benchmark stand-ins, printing one
   Table 2-style row per tool.

   Run with: dune exec examples/tool_compare.exe [-- circuit ...]      *)

let row name tool optimized =
  let netlist = Techmap.Mapper.map optimized in
  Printf.printf "  %-10s %-10s %5d %5d %8.1f %8.3f\n%!" name tool
    (Aig.num_reachable_ands optimized)
    (Aig.depth optimized)
    (Techmap.Mapper.delay netlist)
    (Techmap.Power.dynamic_mw netlist)

let compare_circuit name =
  let g = Circuits.Suite.build name in
  Printf.printf "%s (pi=%d po=%d)\n" name (Aig.num_inputs g)
    (List.length (Aig.outputs g));
  Printf.printf "  %-10s %-10s %5s %5s %8s %8s\n" "circuit" "tool" "gates"
    "lev" "delay" "power";
  row name "original" g;
  row name "sis" (Baselines.sis_like g);
  row name "abc" (Baselines.abc_like g);
  row name "dc" (Baselines.dc_like g);
  let optimized = Lookahead.optimize g in
  row name "lookahead" optimized;
  (match Aig.Cec.check g optimized with
   | Aig.Cec.Equivalent -> ()
   | Aig.Cec.Counterexample _ -> print_endline "  !! equivalence failure");
  print_newline ()

let () =
  let names =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ -> [ "C432"; "C1908"; "sparc_tlu_intctl_flat" ]
  in
  List.iter compare_circuit names
