(* The paper's Sec. 4 case study: the n-bit adder.

   Part 1 verifies the four 2-bit decompositions of c_out listed in the
   paper (carry lookahead, carry select, carry bypass, and the "new"
   overlapping decomposition) as truth-table identities.

   Part 2 regenerates Table 1: best AIG levels after timing optimization
   of ripple-carry adders for n = 2, 4, 8, 16 with every tool.

   Run with: dune exec examples/adder_case_study.exe *)

module Tt = Logic.Tt

(* Variables of the 2-bit adder: a1 b1 a2 b2 cin (indices 0..4). *)
let n = 5
let a1 = Tt.var n 0
let b1 = Tt.var n 1
let a2 = Tt.var n 2
let b2 = Tt.var n 3
let cin = Tt.var n 4
let ( &&& ) = Tt.land_
let ( ||| ) = Tt.lor_
let ( ^^^ ) = Tt.lxor_
let neg = Tt.lnot

(* Generate/propagate per the paper's Sec. 4 (p_i = a_i + b_i). *)
let g1 = a1 &&& b1
let p1 = a1 ||| b1
let g2 = a2 &&& b2
let p2 = a2 ||| b2

(* Reference carry-out of the 2-bit ripple-carry adder. *)
let cout = g2 ||| (p2 &&& (g1 ||| (p1 &&& cin)))

(* A decomposition [y = sigma*y1 + ~sigma*y0] (Eqn. 4). The extraction of
   the paper lost some complement overlines, so each case is checked in
   both window polarities and the verified one is reported. *)
let check_two_way name sigma y1 y0 =
  let form s = (s &&& y1) ||| (neg s &&& y0) in
  if Tt.equal (form sigma) cout then Printf.printf "  %-16s verified (as printed)\n" name
  else if Tt.equal (form (neg sigma)) cout then
    Printf.printf "  %-16s verified (window complemented)\n" name
  else Printf.printf "  %-16s FAILED\n" name

let () =
  print_endline "== Sec. 4: decompositions of the 2-bit adder carry-out ==";
  (* Carry lookahead: two disjoint levels, sigma_i = a_i xor b_i.
     Flattened: cout = ~s2 a2 + s2 ~s1 a1 + s2 s1 cin. *)
  let s1 = a1 ^^^ b1 and s2 = a2 ^^^ b2 in
  let cla = (neg s2 &&& a2) ||| (s2 &&& neg s1 &&& a1) ||| (s2 &&& s1 &&& cin) in
  Printf.printf "  %-16s %s\n" "carry lookahead"
    (if Tt.equal cla cout then "verified (as printed)" else "FAILED");
  (* Carry select: sigma = cin, y1 = g2 + p2 g1, y0 = g2 + p2 p1 ... the
     paper prints y0 = g2 + p2 p1 and y1 = g2 + p1 g1; the select value
     under cin=1 is g2 + p2 p1 (carry assuming carry-in one). *)
  check_two_way "carry select" cin (g2 ||| (p2 &&& p1)) (g2 ||| (p2 &&& g1));
  (* Carry bypass: sigma = p2 p1 cin, y1 = 1 (bypassed carry), y0 = g2 + p2 g1. *)
  check_two_way "carry bypass" (p2 &&& p1 &&& cin) (Tt.const_true n)
    (g2 ||| (p2 &&& g1));
  (* New overlapping decomposition: sigma = cin + g2 + p2 g1,
     y1 = g2 + p2 p1, y0 = 0. *)
  check_two_way "new (overlap)" (cin ||| g2 ||| (p2 &&& g1))
    (g2 ||| (p2 &&& p1)) (Tt.const_false n);
  print_newline ();

  print_endline "== Table 1: best AIG levels, n-bit ripple-carry adders ==";
  Printf.printf "  %-3s %-8s %-5s %-5s %-5s %-10s\n" "n" "Optimum" "SIS" "ABC" "DC" "Lookahead";
  List.iter
    (fun bits ->
      let rca = Circuits.Adders.ripple_carry bits in
      let optimum = Circuits.Adders.optimum_levels bits in
      let depth_after f = Aig.depth (f rca) in
      let sis = depth_after Baselines.sis_like in
      let abc = depth_after Baselines.abc_like in
      let dc = depth_after Baselines.dc_like in
      let la = Aig.depth (Lookahead.optimize rca) in
      Printf.printf "  %-3d %-8d %-5d %-5d %-5d %-10d\n%!" bits optimum sis abc dc la)
    [ 2; 4; 8; 16 ];
  print_newline ();

  print_endline "== Fast adder references (AIG depth) ==";
  List.iter
    (fun bits ->
      Printf.printf
        "  n=%-3d ripple=%-3d kogge-stone=%-3d select=%-3d skip=%-3d\n" bits
        (Aig.depth (Circuits.Adders.ripple_carry bits))
        (Aig.depth (Circuits.Adders.carry_lookahead bits))
        (Aig.depth (Circuits.Adders.carry_select bits))
        (Aig.depth (Circuits.Adders.carry_skip bits)))
    [ 4; 8; 16; 32 ]
