(* Tests for the AIG substrate: construction, simulation, balancing,
   rewriting, sweeping, CNF/CEC, and the BLIF/BENCH round trips. *)

module Tt = Logic.Tt

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Deterministic random circuit from a seed. *)
let random_aig ?(inputs = 6) ?(gates = 40) ?(outputs = 3) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun i -> Aig.add_input ~name:(Printf.sprintf "x%d" i) g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    let a = pick () and b = pick () in
    let n = Aig.band g a b in
    pool := n :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

let check_equiv_and_report name a b =
  match Aig.Cec.check a b with
  | Aig.Cec.Equivalent -> true
  | Aig.Cec.Counterexample cex ->
    Printf.printf "%s differs on %s\n" name
      (String.concat "" (Array.to_list (Array.map (fun b -> if b then "1" else "0") cex)));
    false

let test_construction () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  Alcotest.(check int) "and folds const" Aig.const_false (Aig.band g a Aig.const_false);
  Alcotest.(check int) "and folds unit" a (Aig.band g a Aig.const_true);
  Alcotest.(check int) "idempotent" a (Aig.band g a a);
  Alcotest.(check int) "contradiction" Aig.const_false (Aig.band g a (Aig.bnot a));
  let n1 = Aig.band g a b and n2 = Aig.band g b a in
  Alcotest.(check int) "strash commutes" n1 n2;
  Alcotest.(check int) "two inputs" 2 (Aig.num_inputs g);
  Alcotest.(check int) "one and" 1 (Aig.num_ands g)

let test_eval () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  Aig.add_output g "xor" (Aig.bxor g a b);
  let out bits = (Aig.eval g bits).(0) in
  Alcotest.(check bool) "00" false (out [| false; false |]);
  Alcotest.(check bool) "01" true (out [| false; true |]);
  Alcotest.(check bool) "10" true (out [| true; false |]);
  Alcotest.(check bool) "11" false (out [| true; true |])

let test_levels () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let ab = Aig.band g a b in
  let abc = Aig.band g ab c in
  Aig.add_output g "o" abc;
  Alcotest.(check int) "depth 2" 2 (Aig.depth g);
  let lv = Aig.levels g in
  Alcotest.(check int) "input level 0" 0 lv.(Aig.node_of_lit a);
  Alcotest.(check int) "ab level 1" 1 lv.(Aig.node_of_lit ab)

let test_cleanup_drops_dangling () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g in
  let _dangling = Aig.band g (Aig.band g a b) (Aig.bnot a) in
  Aig.add_output g "o" (Aig.band g a b);
  let g' = Aig.cleanup g in
  Alcotest.(check int) "one and survives" 1 (Aig.num_ands g');
  Alcotest.(check bool) "equivalent" true (Aig.Cec.equivalent g g')

let prop_tt_of_lit =
  qtest "tt_of_lit matches eval" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:25 seed in
      let _, l = List.hd (Aig.outputs g) in
      let tt = Aig.tt_of_lit g l in
      List.for_all
        (fun m ->
          let bits = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
          let out = (Aig.eval g bits).(0) in
          Tt.get_bit tt m = out)
        (List.init 32 Fun.id))

let prop_balance_equiv =
  qtest "balance preserves function" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:60 seed in
      let b = Aig.Balance.run g in
      check_equiv_and_report "balance" g b)

let prop_balance_not_deeper =
  qtest "balance never increases depth" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:60 seed in
      Aig.depth (Aig.Balance.run g) <= Aig.depth g)

let prop_rewrite_equiv =
  qtest ~count:30 "rewrite preserves function" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:50 seed in
      let r = Aig.Rewrite.run ~objective:`Delay g in
      check_equiv_and_report "rewrite-delay" g r
      &&
      let r2 = Aig.Rewrite.run ~objective:`Area g in
      check_equiv_and_report "rewrite-area" g r2)

let prop_sweep_equiv =
  qtest ~count:30 "sat_sweep preserves function" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:80 seed in
      let s = Aig.Sweep.sat_sweep g in
      check_equiv_and_report "sat_sweep" g s
      && Aig.num_reachable_ands s <= Aig.num_reachable_ands g)

let prop_resub_equiv =
  qtest ~count:30 "resub preserves function" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:60 seed in
      check_equiv_and_report "resub" g (Aig.Resub.run g))

let test_resub_finds_shortcut () =
  (* y = (((a & b) & c) & b): the chain can be re-expressed from
     shallower nodes; resub must not break it and should not deepen. *)
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let ab = Aig.band g a b in
  let abc = Aig.band g ab c in
  let y = Aig.band g abc b in
  Aig.add_output g "y" y;
  let r = Aig.Resub.run g in
  Alcotest.(check bool) "equivalent" true (Aig.Cec.equivalent g r);
  Alcotest.(check bool) "no deeper" true (Aig.depth r <= Aig.depth g)

let test_cec_detects_difference () =
  let mk flip =
    let g = Aig.create () in
    let a = Aig.add_input g and b = Aig.add_input g in
    let o = if flip then Aig.bor g a b else Aig.band g a b in
    Aig.add_output g "o" o;
    g
  in
  Alcotest.(check bool) "and != or" false
    (Aig.Cec.equivalent (mk false) (mk true));
  Alcotest.(check bool) "and == and" true
    (Aig.Cec.equivalent (mk false) (mk false))

let prop_blif_roundtrip =
  qtest ~count:30 "blif write/read roundtrip" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let text = Aig.Io.blif_to_string g in
      let g' = Aig.Io.read_blif text in
      check_equiv_and_report "blif" g g')

let prop_bench_roundtrip =
  qtest ~count:30 "bench write/read roundtrip" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let buf = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buf in
      Aig.Io.write_bench ppf g;
      Format.pp_print_flush ppf ();
      let g' = Aig.Io.read_bench (Buffer.contents buf) in
      check_equiv_and_report "bench" g g')

let prop_cut_functions =
  qtest ~count:25 "cut functions match node function" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:40 seed in
      let cuts = Aig.Cuts.enumerate g ~k:4 ~per_node:5 in
      let ok = ref true in
      for id = 1 to Aig.num_nodes g - 1 do
        if Aig.is_and g id then begin
          let node_tt = Aig.tt_of_lit g (Aig.lit_of_node id false) in
          List.iter
            (fun (c : Aig.Cuts.cut) ->
              (* Substitute each leaf's global function into the cut tt and
                 compare against the node's global function. *)
              let global = ref (Tt.const_false 6) in
              let n_leaves = Array.length c.leaves in
              let leaf_tts =
                Array.map (fun lid -> Aig.tt_of_lit g (Aig.lit_of_node lid false)) c.leaves
              in
              let expand m =
                (* Evaluate cut tt on the leaf functions at input minterm m *)
                let idx = ref 0 in
                for i = 0 to n_leaves - 1 do
                  if Tt.get_bit leaf_tts.(i) m then idx := !idx lor (1 lsl i)
                done;
                Tt.get_bit c.tt !idx
              in
              global := Tt.of_fun 6 expand;
              if not (Tt.equal !global node_tt) then ok := false)
            cuts.(id)
        end
      done;
      !ok)

let prop_support =
  qtest "support_of_lit sound" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:30 seed in
      let _, l = List.hd (Aig.outputs g) in
      let sup = Aig.support_of_lit g l in
      let tt = Aig.tt_of_lit g l in
      (* Structural support includes functional support. *)
      List.for_all (fun v -> List.mem v sup) (Tt.support tt))

(* Minimal substring check used by the Verilog test. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let prop_aag_roundtrip =
  qtest ~count:30 "aiger ascii roundtrip" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let g' = Aig.Aiger.read_aag (Aig.Aiger.aag_to_string g) in
      check_equiv_and_report "aag" g g')

let prop_aig_binary_roundtrip =
  qtest ~count:30 "aiger binary roundtrip" gen_seed (fun seed ->
      let g = random_aig ~inputs:5 ~gates:30 seed in
      let buf = Buffer.create 512 in
      Aig.Aiger.write_aig_binary buf g;
      let g' = Aig.Aiger.read_aig_binary (Buffer.contents buf) in
      check_equiv_and_report "aig-binary" g g')

let test_verilog_output () =
  let g = Aig.create () in
  let a = Aig.add_input ~name:"a" g and b = Aig.add_input ~name:"b" g in
  Aig.add_output g "y" (Aig.band g a (Aig.bnot b));
  let text = Aig.Verilog.to_string ~module_name:"t" g in
  Alcotest.(check bool) "module header" true
    (String.length text > 0
     && contains text "module t"
     && contains text "assign"
     && contains text "endmodule")

let () =
  Alcotest.run "aig"
    [
      ( "graph",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "levels" `Quick test_levels;
          Alcotest.test_case "cleanup" `Quick test_cleanup_drops_dangling;
          prop_tt_of_lit;
          prop_support;
        ] );
      ( "passes",
        [
          prop_balance_equiv;
          prop_balance_not_deeper;
          prop_rewrite_equiv;
          prop_sweep_equiv;
          prop_cut_functions;
          prop_resub_equiv;
          Alcotest.test_case "resub shortcut" `Quick test_resub_finds_shortcut;
        ] );
      ( "cec-io",
        [
          Alcotest.test_case "cec detects difference" `Quick test_cec_detects_difference;
          prop_blif_roundtrip;
          prop_bench_roundtrip;
          prop_aag_roundtrip;
          prop_aig_binary_roundtrip;
          Alcotest.test_case "verilog" `Quick test_verilog_output;
        ] );
    ]
