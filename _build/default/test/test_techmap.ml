(* Tests for the technology mapper, the cell library, and the power
   model. *)

module Tt = Logic.Tt

let qtest ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

let random_aig ?(inputs = 6) ?(gates = 50) ?(outputs = 3) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun _ -> Aig.add_input g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* --- library ------------------------------------------------------------ *)

let test_library_sanity () =
  List.iter
    (fun (c : Techmap.Library.cell) ->
      Alcotest.(check int)
        (c.Techmap.Library.name ^ " arity matches tt")
        c.Techmap.Library.arity
        (Tt.num_vars c.Techmap.Library.func);
      Alcotest.(check bool)
        (c.Techmap.Library.name ^ " positive costs")
        true
        (c.Techmap.Library.area > 0.0 && c.Techmap.Library.intrinsic > 0.0))
    Techmap.Library.cells;
  let inv = Techmap.Library.find "INV" in
  Alcotest.(check bool) "INV inverts" true
    (Tt.equal inv.Techmap.Library.func (Tt.lnot (Tt.var 1 0)))

let test_library_unique_names () =
  let names = List.map (fun c -> c.Techmap.Library.name) Techmap.Library.cells in
  Alcotest.(check int) "unique" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- mapper -------------------------------------------------------------- *)

let prop_mapping_correct =
  qtest ~count:50 "mapped netlist simulates like the AIG" gen_seed (fun seed ->
      let g = random_aig seed in
      let n = Techmap.Mapper.map g in
      Techmap.Mapper.check n)

let prop_mapping_covers =
  qtest "every PO signal produced or primary" gen_seed (fun seed ->
      let g = random_aig seed in
      let n = Techmap.Mapper.map g in
      let produced = Hashtbl.create 64 in
      List.iter
        (fun (gate : Techmap.Mapper.gate) ->
          Hashtbl.replace produced
            (gate.Techmap.Mapper.out.Techmap.Mapper.node,
             gate.Techmap.Mapper.out.Techmap.Mapper.inverted)
            ())
        n.Techmap.Mapper.gates;
      List.for_all
        (fun ((_, s) : string * Techmap.Mapper.signal) ->
          Hashtbl.mem produced (s.Techmap.Mapper.node, s.Techmap.Mapper.inverted)
          || s.Techmap.Mapper.node = 0
          || (Aig.is_input g s.Techmap.Mapper.node && not s.Techmap.Mapper.inverted))
        n.Techmap.Mapper.primary_outputs)

let prop_metrics_positive =
  qtest "area/delay positive on nontrivial circuits" gen_seed (fun seed ->
      let g = random_aig seed in
      let n = Techmap.Mapper.map g in
      Techmap.Mapper.num_gates n = 0
      || (Techmap.Mapper.area n > 0.0 && Techmap.Mapper.delay n > 0.0))

let test_constant_output () =
  let g = Aig.create () in
  let _ = Aig.add_input g in
  Aig.add_output g "zero" Aig.const_false;
  Aig.add_output g "one" Aig.const_true;
  let n = Techmap.Mapper.map g in
  Alcotest.(check bool) "maps" true (Techmap.Mapper.check n)

let test_delay_monotone_in_depth () =
  (* A deeper implementation of the same function should not map to a
     faster netlist (same structure family). *)
  let rca = Circuits.Adders.ripple_carry 8 in
  let cla = Circuits.Adders.carry_lookahead 8 in
  let d_rca = Techmap.Mapper.delay (Techmap.Mapper.map rca) in
  let d_cla = Techmap.Mapper.delay (Techmap.Mapper.map cla) in
  Alcotest.(check bool) "cla maps faster" true (d_cla < d_rca)

(* --- mapped STA ----------------------------------------------------------- *)

let test_sta_consistent_with_delay () =
  let g = Circuits.Adders.ripple_carry 8 in
  let n = Techmap.Mapper.map g in
  let r = Techmap.Sta.analyze n in
  Alcotest.(check (float 1e-6)) "sta delay = mapper delay"
    (Techmap.Mapper.delay n) r.Techmap.Sta.delay;
  let path = Techmap.Sta.critical_path n r in
  Alcotest.(check bool) "path nonempty" true (path <> []);
  (* Slack on the critical path's endpoint is ~0. *)
  let last = List.nth path (List.length path - 1) in
  let s =
    Hashtbl.find r.Techmap.Sta.slack
      (last.Techmap.Mapper.out.Techmap.Mapper.node,
       last.Techmap.Mapper.out.Techmap.Mapper.inverted)
  in
  Alcotest.(check bool) "endpoint slack zero" true (abs_float s < 1e-6)

let test_sta_nonnegative_slack () =
  let g = Circuits.Suite.build "C432" in
  let n = Techmap.Mapper.map g in
  let r = Techmap.Sta.analyze n in
  Hashtbl.iter
    (fun _ s ->
      Alcotest.(check bool) "slack >= 0" true (s >= -1e-6))
    r.Techmap.Sta.slack

let test_verilog_netlist () =
  let g = Circuits.Adders.ripple_carry 2 in
  let n = Techmap.Mapper.map g in
  let text = Techmap.Verilog.to_string ~module_name:"adder2" n in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "has top module" true (contains text "module adder2");
  Alcotest.(check bool) "instantiates cells" true (contains text " u0 (");
  Alcotest.(check bool) "ends" true (contains text "endmodule")

(* --- LUT mapping ----------------------------------------------------------- *)

let prop_lut_correct =
  qtest ~count:40 "k-LUT cover simulates like the AIG" gen_seed (fun seed ->
      let g = random_aig seed in
      Techmap.Lut.check (Techmap.Lut.map ~k:4 g))

let test_lut_depth_bound () =
  (* LUT depth with k=4 must be far below AIG depth on the adder. *)
  let g = Circuits.Adders.ripple_carry 16 in
  let n = Techmap.Lut.map ~k:4 g in
  Alcotest.(check bool) "check" true (Techmap.Lut.check n);
  Alcotest.(check bool) "fewer levels" true
    (Techmap.Lut.depth n * 2 <= Aig.depth g);
  Alcotest.(check bool) "fewer luts than ands" true
    (Techmap.Lut.num_luts n <= Aig.num_reachable_ands g)

let prop_lut_k_monotone =
  qtest ~count:20 "larger k never deepens the LUT cover" gen_seed (fun seed ->
      let g = random_aig seed in
      Techmap.Lut.depth (Techmap.Lut.map ~k:6 g)
      <= Techmap.Lut.depth (Techmap.Lut.map ~k:4 g))

(* --- power ---------------------------------------------------------------- *)

let test_power_positive_and_scales () =
  let small = Circuits.Adders.ripple_carry 4 in
  let big = Circuits.Adders.ripple_carry 16 in
  let p_small = Techmap.Power.dynamic_mw (Techmap.Mapper.map small) in
  let p_big = Techmap.Power.dynamic_mw (Techmap.Mapper.map big) in
  Alcotest.(check bool) "positive" true (p_small > 0.0);
  Alcotest.(check bool) "scales with size" true (p_big > p_small)

let test_power_deterministic () =
  let g = Circuits.Suite.build "C432" in
  let n = Techmap.Mapper.map g in
  let p1 = Techmap.Power.dynamic_mw n and p2 = Techmap.Power.dynamic_mw n in
  Alcotest.(check (float 1e-12)) "deterministic" p1 p2

let () =
  Alcotest.run "techmap"
    [
      ( "library",
        [
          Alcotest.test_case "sanity" `Quick test_library_sanity;
          Alcotest.test_case "unique names" `Quick test_library_unique_names;
        ] );
      ( "mapper",
        [
          prop_mapping_correct;
          prop_mapping_covers;
          prop_metrics_positive;
          Alcotest.test_case "constant outputs" `Quick test_constant_output;
          Alcotest.test_case "delay vs depth" `Quick test_delay_monotone_in_depth;
        ] );
      ( "sta",
        [
          Alcotest.test_case "consistent with delay" `Quick test_sta_consistent_with_delay;
          Alcotest.test_case "nonnegative slack" `Quick test_sta_nonnegative_slack;
          Alcotest.test_case "verilog netlist" `Quick test_verilog_netlist;
        ] );
      ( "lut",
        [
          prop_lut_correct;
          Alcotest.test_case "adder depth bound" `Quick test_lut_depth_bound;
          prop_lut_k_monotone;
        ] );
      ( "power",
        [
          Alcotest.test_case "positive and scaling" `Quick test_power_positive_and_scales;
          Alcotest.test_case "deterministic" `Quick test_power_deterministic;
        ] );
    ]
