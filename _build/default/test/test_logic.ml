(* Unit and property tests for the Boolean-function kernel (lib/logic). *)

module Tt = Logic.Tt
module Cube = Logic.Cube
module Sop = Logic.Sop
module Minimize = Logic.Minimize

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_tt n =
  QCheck.make
    ~print:(fun t -> Tt.to_hex t)
    (QCheck.Gen.map
       (fun seed -> Tt.random (Random.State.make [| seed |]) n)
       QCheck.Gen.int)

(* --- Truth tables ------------------------------------------------------ *)

let test_var_semantics () =
  for n = 1 to 9 do
    for i = 0 to n - 1 do
      let v = Tt.var n i in
      for m = 0 to (1 lsl n) - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "var %d of %d at %d" i n m)
          ((m lsr i) land 1 = 1)
          (Tt.get_bit v m)
      done
    done
  done

let test_const () =
  Alcotest.(check bool) "false is const false" true
    (Tt.is_const_false (Tt.const_false 7));
  Alcotest.(check bool) "true is const true" true
    (Tt.is_const_true (Tt.const_true 7));
  Alcotest.(check int) "count_ones of true" 128 (Tt.count_ones (Tt.const_true 7));
  Alcotest.(check int) "count_ones of var" 8 (Tt.count_ones (Tt.var 4 2))

let test_cofactor_small_large () =
  (* Variable index below and above the word boundary (6). *)
  let n = 8 in
  let st = Random.State.make [| 42 |] in
  let f = Tt.random st n in
  List.iter
    (fun i ->
      let f0 = Tt.cofactor f i false and f1 = Tt.cofactor f i true in
      for m = 0 to (1 lsl n) - 1 do
        let m0 = m land lnot (1 lsl i) and m1 = m lor (1 lsl i) in
        Alcotest.(check bool) "cof0" (Tt.get_bit f m0) (Tt.get_bit f0 m);
        Alcotest.(check bool) "cof1" (Tt.get_bit f m1) (Tt.get_bit f1 m)
      done)
    [ 0; 3; 5; 6; 7 ]

let test_compose () =
  let n = 5 in
  let f = Tt.lor_ (Tt.land_ (Tt.var n 0) (Tt.var n 1)) (Tt.var n 2) in
  let g = Tt.lxor_ (Tt.var n 3) (Tt.var n 4) in
  let h = Tt.compose f 2 g in
  let expect =
    Tt.lor_ (Tt.land_ (Tt.var n 0) (Tt.var n 1)) (Tt.lxor_ (Tt.var n 3) (Tt.var n 4))
  in
  Alcotest.(check bool) "compose substitutes" true (Tt.equal h expect)

let test_permute () =
  let n = 4 in
  let f = Tt.land_ (Tt.var n 0) (Tt.lnot (Tt.var n 3)) in
  let g = Tt.permute f [| 1; 0; 3; 2 |] in
  let expect = Tt.land_ (Tt.var n 1) (Tt.lnot (Tt.var n 2)) in
  Alcotest.(check bool) "permute renames" true (Tt.equal g expect)

let test_support () =
  let n = 6 in
  let f = Tt.lxor_ (Tt.var n 1) (Tt.var n 4) in
  Alcotest.(check (list int)) "support" [ 1; 4 ] (Tt.support f)

let prop_demorgan =
  qtest "tt: de morgan" (QCheck.pair (gen_tt 7) (gen_tt 7)) (fun (a, b) ->
      Tt.equal (Tt.lnot (Tt.land_ a b)) (Tt.lor_ (Tt.lnot a) (Tt.lnot b)))

let prop_shannon =
  qtest "tt: shannon expansion" (gen_tt 8) (fun f ->
      let x = Tt.var 8 3 in
      let f0 = Tt.cofactor f 3 false and f1 = Tt.cofactor f 3 true in
      Tt.equal f (Tt.lor_ (Tt.land_ x f1) (Tt.land_ (Tt.lnot x) f0)))

let prop_exists =
  qtest "tt: exists drops dependence" (gen_tt 7) (fun f ->
      not (Tt.depends_on (Tt.exists f 2) 2))

let prop_minterms_roundtrip =
  qtest "tt: minterms roundtrip" (gen_tt 6) (fun f ->
      Tt.equal f (Tt.of_minterms 6 (Tt.minterms f)))

(* --- Cubes -------------------------------------------------------------- *)

let test_cube_basic () =
  let c = Cube.of_literals [ (0, true); (2, false) ] in
  Alcotest.(check int) "literal count" 2 (Cube.num_literals c);
  Alcotest.(check bool) "mem 0b001" true (Cube.mem c 0b001);
  Alcotest.(check bool) "mem 0b101" false (Cube.mem c 0b101);
  Alcotest.(check string) "to_string" "1-0-" (Cube.to_string 4 c);
  Alcotest.(check int) "minterm count" 4 (Cube.minterm_count 4 c)

let test_cube_intersect () =
  let c = Cube.of_literals [ (0, true) ] in
  let d = Cube.of_literals [ (0, false) ] in
  let e = Cube.of_literals [ (1, true) ] in
  Alcotest.(check bool) "conflict" true (Cube.intersect c d = None);
  (match Cube.intersect c e with
   | Some i ->
     Alcotest.(check string) "product" "11" (Cube.to_string 2 i)
   | None -> Alcotest.fail "expected intersection")

let test_cube_cofactor () =
  let c = Cube.of_literals [ (1, true); (2, false) ] in
  (match Cube.cofactor c 1 true with
   | Some c' -> Alcotest.(check string) "drop literal" "--0" (Cube.to_string 3 c')
   | None -> Alcotest.fail "expected cube");
  Alcotest.(check bool) "conflicting cofactor" true (Cube.cofactor c 1 false = None)

let prop_cube_tt =
  let gen =
    QCheck.make
      ~print:(fun (mask, bits) -> Printf.sprintf "mask=%x bits=%x" mask bits)
      QCheck.Gen.(
        map
          (fun (m, b) ->
            let m = m land 0x3F in
            (m, b land m))
          (pair (int_bound 63) (int_bound 63)))
  in
  qtest "cube: to_tt agrees with mem" gen (fun (mask, bits) ->
      let c = { Cube.mask; bits } in
      let t = Cube.to_tt 6 c in
      List.for_all (fun m -> Tt.get_bit t m = Cube.mem c m)
        (List.init 64 Fun.id))

(* --- SOPs --------------------------------------------------------------- *)

let test_sop_eval () =
  let s =
    Sop.make 3
      [ Cube.of_literals [ (0, true); (1, true) ]; Cube.of_literals [ (2, true) ] ]
  in
  Alcotest.(check bool) "011" true (Sop.eval s 0b011);
  Alcotest.(check bool) "100" true (Sop.eval s 0b100);
  Alcotest.(check bool) "001" false (Sop.eval s 0b001);
  Alcotest.(check int) "literals" 3 (Sop.num_literals s)

let test_sop_ops () =
  let a = Sop.make 2 [ Cube.of_literals [ (0, true) ] ] in
  let b = Sop.make 2 [ Cube.of_literals [ (1, true) ] ] in
  let c = Sop.conj a b in
  Alcotest.(check bool) "conj tt" true
    (Tt.equal (Sop.to_tt c) (Tt.land_ (Sop.to_tt a) (Sop.to_tt b)));
  let d = Sop.disj a b in
  Alcotest.(check bool) "disj tt" true
    (Tt.equal (Sop.to_tt d) (Tt.lor_ (Sop.to_tt a) (Sop.to_tt b)))

let test_drop_contained () =
  let big = Cube.of_literals [ (0, true) ] in
  let small = Cube.of_literals [ (0, true); (1, false) ] in
  let s = Sop.drop_contained (Sop.make 2 [ big; small ]) in
  Alcotest.(check int) "contained cube dropped" 1 (Sop.num_cubes s)

(* --- Minimization ------------------------------------------------------- *)

let prop_isop_cover =
  qtest "isop: lower <= cover <= upper" (QCheck.pair (gen_tt 6) (gen_tt 6))
    (fun (a, b) ->
      let lower = Tt.land_ a b and upper = Tt.lor_ a b in
      let s = Minimize.isop ~lower ~upper in
      let c = Sop.to_tt s in
      Tt.is_const_false (Tt.land_ lower (Tt.lnot c))
      && Tt.is_const_false (Tt.land_ c (Tt.lnot upper)))

let prop_isop_exact =
  qtest "isop: exact when no dc" (gen_tt 7) (fun f ->
      Tt.equal (Sop.to_tt (Minimize.isop ~lower:f ~upper:f)) f)

let prop_min_cover_exact =
  qtest ~count:60 "minimum_cover: equals function" (gen_tt 5) (fun f ->
      let s = Minimize.minimum_cover ~on:f ~dc:(Tt.const_false 5) in
      Tt.equal (Sop.to_tt s) f)

let prop_primes_are_implicants =
  qtest ~count:40 "primes: implicants of on+dc" (QCheck.pair (gen_tt 5) (gen_tt 5))
    (fun (on, dcr) ->
      let dc = Tt.land_ dcr (Tt.lnot on) in
      let cover = Tt.lor_ on dc in
      List.for_all
        (fun c ->
          List.for_all (fun m -> (not (Cube.mem c m)) || Tt.get_bit cover m)
            (List.init 32 Fun.id))
        (Minimize.primes ~on ~dc))

let prop_primes_maximal =
  qtest ~count:40 "primes: no literal removable" (gen_tt 4) (fun on ->
      let dc = Tt.const_false 4 in
      let cover = on in
      let inside c =
        List.for_all (fun m -> (not (Cube.mem c m)) || Tt.get_bit cover m)
          (List.init 16 Fun.id)
      in
      List.for_all
        (fun c ->
          List.for_all
            (fun (i, _) ->
              let c' =
                { Cube.mask = c.Cube.mask land lnot (1 lsl i);
                  bits = c.Cube.bits land lnot (1 lsl i) }
              in
              not (inside c'))
            (Cube.literals c))
        (Minimize.primes ~on ~dc))

(* --- Espresso ------------------------------------------------------------ *)

let prop_espresso_exact =
  qtest ~count:80 "espresso: cover equals function" (gen_tt 6) (fun f ->
      let s = Logic.Espresso.minimize ~on:f ~dc:(Tt.const_false 6) in
      Tt.equal (Sop.to_tt s) f)

let prop_espresso_with_dc =
  qtest ~count:60 "espresso: between on and on+dc"
    (QCheck.pair (gen_tt 6) (gen_tt 6))
    (fun (a, b) ->
      let on = Tt.land_ a b in
      let dc = Tt.land_ (Tt.lnot on) (Tt.lxor_ a b) in
      let s = Logic.Espresso.minimize ~on ~dc in
      let c = Sop.to_tt s in
      Tt.is_const_false (Tt.land_ on (Tt.lnot c))
      && Tt.is_const_false (Tt.land_ c (Tt.lnot (Tt.lor_ on dc))))

let prop_espresso_cubes_prime =
  qtest ~count:40 "espresso: cubes are primes" (gen_tt 5) (fun on ->
      let dc = Tt.const_false 5 in
      let s = Logic.Espresso.minimize ~on ~dc in
      let inside c = Tt.is_const_false (Tt.land_ (Cube.to_tt 5 c) (Tt.lnot on)) in
      List.for_all
        (fun c ->
          List.for_all
            (fun (i, _) ->
              let c' =
                { Cube.mask = c.Cube.mask land lnot (1 lsl i);
                  bits = c.Cube.bits land lnot (1 lsl i) }
              in
              not (inside c'))
            (Cube.literals c))
        s.Sop.cubes)

let prop_espresso_not_worse =
  qtest ~count:40 "espresso: no more cubes than isop" (gen_tt 6) (fun f ->
      let e = Logic.Espresso.minimize ~on:f ~dc:(Tt.const_false 6) in
      let i = Minimize.isop ~lower:f ~upper:f in
      Sop.num_cubes e <= Sop.num_cubes i)

let prop_espresso_wide =
  qtest ~count:8 "espresso: handles 10-variable functions" (gen_tt 10)
    (fun f ->
      let s = Logic.Espresso.minimize ~on:f ~dc:(Tt.const_false 10) in
      Tt.equal (Sop.to_tt s) f)

let test_known_minimum () =
  (* f = x0 x1 + ~x0 x2 : classic 2-cube minimum with a consensus term. *)
  let n = 3 in
  let f =
    Tt.lor_
      (Tt.land_ (Tt.var n 0) (Tt.var n 1))
      (Tt.land_ (Tt.lnot (Tt.var n 0)) (Tt.var n 2))
  in
  let s = Minimize.minimum_cover ~on:f ~dc:(Tt.const_false n) in
  Alcotest.(check bool) "exact" true (Tt.equal (Sop.to_tt s) f);
  Alcotest.(check bool) "at most 2 cubes" true (Sop.num_cubes s <= 2)

let () =
  Alcotest.run "logic"
    [
      ( "tt",
        [
          Alcotest.test_case "var semantics" `Quick test_var_semantics;
          Alcotest.test_case "constants" `Quick test_const;
          Alcotest.test_case "cofactors across word boundary" `Quick
            test_cofactor_small_large;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "permute" `Quick test_permute;
          Alcotest.test_case "support" `Quick test_support;
          prop_demorgan;
          prop_shannon;
          prop_exists;
          prop_minterms_roundtrip;
        ] );
      ( "cube",
        [
          Alcotest.test_case "basics" `Quick test_cube_basic;
          Alcotest.test_case "intersect" `Quick test_cube_intersect;
          Alcotest.test_case "cofactor" `Quick test_cube_cofactor;
          prop_cube_tt;
        ] );
      ( "sop",
        [
          Alcotest.test_case "eval" `Quick test_sop_eval;
          Alcotest.test_case "conj/disj" `Quick test_sop_ops;
          Alcotest.test_case "drop_contained" `Quick test_drop_contained;
        ] );
      ( "minimize",
        [
          prop_isop_cover;
          prop_isop_exact;
          prop_min_cover_exact;
          prop_primes_are_implicants;
          prop_primes_maximal;
          Alcotest.test_case "known minimum" `Quick test_known_minimum;
        ] );
      ( "espresso",
        [
          prop_espresso_exact;
          prop_espresso_with_dc;
          prop_espresso_cubes_prime;
          prop_espresso_not_worse;
          prop_espresso_wide;
        ] );
    ]
