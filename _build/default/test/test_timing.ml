(* Tests for static timing analysis and the SPCF engines. *)

module Tt = Logic.Tt

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

let random_aig ?(inputs = 6) ?(gates = 40) ?(outputs = 2) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun _ -> Aig.add_input g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

(* --- STA ---------------------------------------------------------------- *)

let test_sta_chain () =
  let g = Aig.create () in
  let a = Aig.add_input g and b = Aig.add_input g and c = Aig.add_input g in
  let ab = Aig.band g a b in
  let abc = Aig.band g ab c in
  Aig.add_output g "o" abc;
  let r = Timing.Sta.analyze g in
  Alcotest.(check int) "depth" 2 r.Timing.Sta.depth;
  Alcotest.(check int) "arrival ab" 1 r.Timing.Sta.arrival.(Aig.node_of_lit ab);
  Alcotest.(check int) "required ab" 1 r.Timing.Sta.required.(Aig.node_of_lit ab);
  let crit = Timing.Sta.critical_nodes g r in
  Alcotest.(check bool) "ab critical" true (List.mem (Aig.node_of_lit ab) crit);
  let path = Timing.Sta.critical_path g r in
  Alcotest.(check int) "path length" 3 (List.length path)

let prop_sta_invariants =
  qtest "arrival <= required on reachable logic" gen_seed (fun seed ->
      let g = random_aig seed in
      let r = Timing.Sta.analyze g in
      List.for_all
        (fun id ->
          r.Timing.Sta.required.(id) = max_int
          || r.Timing.Sta.arrival.(id) <= r.Timing.Sta.required.(id))
        (List.init (Aig.num_nodes g) Fun.id))

let prop_critical_outputs =
  qtest "some output is critical" gen_seed (fun seed ->
      let g = random_aig seed in
      let r = Timing.Sta.analyze g in
      r.Timing.Sta.depth = 0 || Timing.Sta.critical_outputs g r <> [])

(* --- floating-mode delays ----------------------------------------------- *)

let test_floating_controlling () =
  (* o = a & chain: when a=0, the AND is controlled and answers fast. *)
  let g = Aig.create () in
  let a = Aig.add_input g in
  let xs = Array.init 4 (fun _ -> Aig.add_input g) in
  let chain = Array.fold_left (fun acc x -> Aig.band g acc x) Aig.const_true xs in
  let o = Aig.band g a chain in
  Aig.add_output g "o" o;
  let oid = Aig.node_of_lit o in
  let all_true = Array.make 5 true in
  let delays = Timing.Spcf.floating_delays g all_true in
  let full = delays.(oid) in
  let a_zero = Array.copy all_true in
  a_zero.(0) <- false;
  let delays0 = Timing.Spcf.floating_delays g a_zero in
  Alcotest.(check int) "controlled output is fast" 1 delays0.(oid);
  Alcotest.(check bool) "sensitized path is slow" true (full > 1)

let prop_floating_bounded_by_levels =
  qtest "floating delay <= topological level" gen_seed (fun seed ->
      let g = random_aig seed in
      let lv = Aig.levels g in
      List.for_all
        (fun m ->
          let bits = Array.init 6 (fun i -> (m lsr i) land 1 = 1) in
          let d = Timing.Spcf.floating_delays g bits in
          List.for_all
            (fun id -> d.(id) <= lv.(id))
            (List.init (Aig.num_nodes g) Fun.id))
        [ 0; 21; 42; 63 ])

let test_exact_spcf_adder () =
  (* For a ripple-carry adder, only carry-propagating minterms exercise
     the full-depth paths. *)
  let g = Circuits.Adders.ripple_carry 4 in
  let outs = Aig.outputs g in
  let cout_index =
    let rec find i = function
      | [] -> failwith "no cout"
      | (name, _) :: rest -> if name = "cout" then i else find (i + 1) rest
    in
    find 0 outs
  in
  let lv = Aig.levels g in
  let _, ol = List.nth outs cout_index in
  let delta = lv.(Aig.node_of_lit ol) in
  let spcf = Timing.Spcf.exact g ~out:cout_index ~delta in
  let count = Tt.count_ones spcf in
  Alcotest.(check bool) "spcf nonempty" true (count > 0);
  Alcotest.(check bool) "spcf is a strict subset" true (count < Tt.size spcf)

let prop_exact_spcf_monotone =
  qtest ~count:25 "exact SPCF shrinks as delta grows" gen_seed (fun seed ->
      let g = random_aig ~inputs:6 ~gates:30 ~outputs:1 seed in
      let lv = Aig.levels g in
      let _, ol = List.hd (Aig.outputs g) in
      let d = lv.(Aig.node_of_lit ol) in
      d < 2
      ||
      let s1 = Timing.Spcf.exact g ~out:0 ~delta:(d - 1) in
      let s2 = Timing.Spcf.exact g ~out:0 ~delta:d in
      (* s2 subset of s1 *)
      Tt.is_const_false (Tt.land_ s2 (Tt.lnot s1)))

let prop_exact_spcf_zero_delta =
  qtest ~count:15 "exact SPCF at delta 0 is the universe" gen_seed
    (fun seed ->
      let g = random_aig ~inputs:5 ~gates:20 ~outputs:1 seed in
      Tt.is_const_true (Timing.Spcf.exact g ~out:0 ~delta:0))

(* --- approximate SPCF ---------------------------------------------------- *)

let test_approx_spcf_sensible () =
  let g = Aig.Balance.run (Circuits.Adders.ripple_carry 4) in
  let net = Network.of_aig ~k:6 g in
  let levels = Network.Levels.compute net in
  let man = Bdd.create () in
  let globals = Network.Globals.of_net man net in
  let o =
    List.find
      (fun (o : Network.output) -> o.Network.name = "cout")
      (Network.outputs net)
  in
  let delta = levels.(o.Network.node) in
  let spcf = Timing.Spcf.approx man net globals ~levels ~out:o ~delta () in
  Alcotest.(check bool) "nonempty" false (Bdd.is_false man spcf);
  (* At an impossible threshold the SPCF must be empty. *)
  let spcf_hi =
    Timing.Spcf.approx man net globals ~levels ~out:o ~delta:(delta * 10) ()
  in
  Alcotest.(check bool) "empty above depth" true (Bdd.is_false man spcf_hi)

let test_boolean_difference () =
  (* y = a xor b : flipping either input always flips y. *)
  let net = Network.create () in
  let a = Network.add_input net and b = Network.add_input net in
  let x = Network.add_node net [| a; b |] (Tt.lxor_ (Tt.var 2 0) (Tt.var 2 1)) in
  let buf = Network.add_node net [| x |] (Tt.var 1 0) in
  Network.add_output net "y" buf;
  let man = Bdd.create () in
  let globals = Network.Globals.of_net man net in
  let o = List.hd (Network.outputs net) in
  let d = Timing.Spcf.boolean_difference man net globals ~wrt:x ~out:o in
  Alcotest.(check bool) "xor depends everywhere" true (Bdd.is_true man d);
  (* Output does not depend on an unrelated node. *)
  let unrelated = Network.add_node net [| a |] (Tt.var 1 0) in
  let d2 = Timing.Spcf.boolean_difference man net globals ~wrt:unrelated ~out:o in
  Alcotest.(check bool) "no dependence" true (Bdd.is_false man d2)

let () =
  Alcotest.run "timing"
    [
      ( "sta",
        [
          Alcotest.test_case "chain" `Quick test_sta_chain;
          prop_sta_invariants;
          prop_critical_outputs;
        ] );
      ( "floating",
        [
          Alcotest.test_case "controlling value" `Quick test_floating_controlling;
          prop_floating_bounded_by_levels;
          Alcotest.test_case "exact SPCF on adder" `Quick test_exact_spcf_adder;
          prop_exact_spcf_monotone;
          prop_exact_spcf_zero_delta;
        ] );
      ( "spcf",
        [
          Alcotest.test_case "approx sensible" `Quick test_approx_spcf_sensible;
          Alcotest.test_case "boolean difference" `Quick test_boolean_difference;
        ] );
    ]
