(* Tests for the circuit generators: interface counts, functional
   correctness of the arithmetic circuits, determinism of the stand-ins. *)

let test_adder_functional () =
  (* Cross-check all adder implementations against integer addition. *)
  List.iter
    (fun n ->
      let builders =
        [
          ("ripple", Circuits.Adders.ripple_carry n);
          ("cla", Circuits.Adders.carry_lookahead n);
          ("select", Circuits.Adders.carry_select ~block:2 n);
          ("skip", Circuits.Adders.carry_skip ~block:2 n);
        ]
      in
      List.iter
        (fun (name, g) ->
          for a = 0 to (1 lsl n) - 1 do
            for b = 0 to (1 lsl n) - 1 do
              List.iter
                (fun cin ->
                  let bits = Array.make ((2 * n) + 1) false in
                  for i = 0 to n - 1 do
                    bits.(2 * i) <- (a lsr i) land 1 = 1;
                    bits.((2 * i) + 1) <- (b lsr i) land 1 = 1
                  done;
                  bits.(2 * n) <- cin;
                  let out = Aig.eval g bits in
                  let expected = a + b + if cin then 1 else 0 in
                  let got = ref 0 in
                  Array.iteri
                    (fun i v -> if v then got := !got lor (1 lsl i))
                    out;
                  Alcotest.(check int)
                    (Printf.sprintf "%s %d+%d+%b (n=%d)" name a b cin n)
                    expected !got)
                [ false; true ]
            done
          done)
        builders)
    [ 2; 3 ]

let test_adder_depths () =
  (* The prefix adder must be asymptotically shallower. *)
  Alcotest.(check bool) "cla shallower at 16" true
    (Aig.depth (Circuits.Adders.carry_lookahead 16)
     < Aig.depth (Circuits.Adders.ripple_carry 16));
  Alcotest.(check bool) "select shallower at 16" true
    (Aig.depth (Circuits.Adders.carry_select 16)
     < Aig.depth (Circuits.Adders.ripple_carry 16))

let test_suite_interface_counts () =
  List.iter
    (fun (info : Circuits.Suite.info) ->
      let g = Circuits.Suite.build info.Circuits.Suite.name in
      Alcotest.(check int)
        (info.Circuits.Suite.name ^ " pi")
        info.Circuits.Suite.pi (Aig.num_inputs g);
      Alcotest.(check int)
        (info.Circuits.Suite.name ^ " po")
        info.Circuits.Suite.po
        (List.length (Aig.outputs g)))
    Circuits.Suite.all

let test_suite_deterministic () =
  List.iter
    (fun name ->
      let a = Circuits.Suite.build name and b = Circuits.Suite.build name in
      Alcotest.(check bool) (name ^ " deterministic") true
        (Aig.Cec.equivalent a b))
    [ "C432"; "i10"; "sparc_tlu_intctl_flat" ]

let test_rotator () =
  (* Small rotator: output i equals input (i + amount) mod data when the
     mask lanes are zero. *)
  let data = 5 in
  let g = Circuits.Gen.rotator ~data ~extra:0 in
  let nshift = 3 in
  for amount = 0 to data - 1 do
    for src = 0 to data - 1 do
      let bits = Array.make (data + nshift) false in
      bits.(src) <- true;
      for s = 0 to nshift - 1 do
        bits.(data + s) <- (amount lsr s) land 1 = 1
      done;
      let out = Aig.eval g bits in
      for i = 0 to data - 1 do
        let expected = (i + amount) mod data = src in
        Alcotest.(check bool)
          (Printf.sprintf "rot amount=%d src=%d out=%d" amount src i)
          expected out.(i)
      done
    done
  done

let test_ecc_corrects () =
  (* With matching parity inputs the data passes through unchanged. *)
  let data = 8 in
  let g = Circuits.Gen.ecc ~data () in
  let ns = 4 (* log2_ceil 9 *) in
  let parity_of v j =
    let x = ref false in
    for i = 0 to data - 1 do
      if ((i + 1) lsr j) land 1 = 1 && (v lsr i) land 1 = 1 then x := not !x
    done;
    !x
  in
  for v = 0 to (1 lsl data) - 1 do
    let bits = Array.make (data + ns) false in
    for i = 0 to data - 1 do
      bits.(i) <- (v lsr i) land 1 = 1
    done;
    for j = 0 to ns - 1 do
      bits.(data + j) <- parity_of v j
    done;
    let out = Aig.eval g bits in
    for i = 0 to data - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "ecc passthrough v=%d bit %d" v i)
        ((v lsr i) land 1 = 1)
        out.(i)
    done
  done;
  (* A single flipped data bit is corrected when the parity matches the
     original word. *)
  let v = 0b10110101 in
  List.iter
    (fun flip ->
      let bits = Array.make (data + ns) false in
      let corrupted = v lxor (1 lsl flip) in
      for i = 0 to data - 1 do
        bits.(i) <- (corrupted lsr i) land 1 = 1
      done;
      for j = 0 to ns - 1 do
        bits.(data + j) <- parity_of v j
      done;
      let out = Aig.eval g bits in
      for i = 0 to data - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "ecc corrects bit %d (out %d)" flip i)
          ((v lsr i) land 1 = 1)
          out.(i)
      done)
    [ 0; 3; 7 ]

let test_priority_controller () =
  let g = Circuits.Gen.priority_controller ~channels:4 ~po:4 in
  (* Channel 1 requests and is enabled; channel 3 also requests but loses
     to the lower index. Encoded grant = 1. *)
  let bits = Array.make 10 false in
  bits.(1) <- true (* r1 *);
  bits.(3) <- true (* r3 *);
  bits.(4 + 1) <- true (* e1 *);
  bits.(4 + 3) <- true (* e3 *);
  bits.(8) <- true (* master_en *);
  let out = Aig.eval g bits in
  (* outputs: grant index bits (2), any&master, mode mux *)
  Alcotest.(check bool) "grant bit0" true out.(0);
  Alcotest.(check bool) "grant bit1" false out.(1)

let test_alu_add () =
  let width = 4 in
  let g = Circuits.Gen.alu ~width ~control:4 in
  (* op0=1 selects the adder; all other controls 0. *)
  for a = 0 to 15 do
    for b = 0 to 15 do
      let bits = Array.make (2 * width + 4) false in
      for i = 0 to width - 1 do
        bits.(i) <- (a lsr i) land 1 = 1;
        bits.(width + i) <- (b lsr i) land 1 = 1
      done;
      bits.(2 * width) <- true (* c0 = op0 *);
      let out = Aig.eval g bits in
      let got = ref 0 in
      Array.iteri (fun i v -> if v then got := !got lor (1 lsl i)) out;
      Alcotest.(check int)
        (Printf.sprintf "alu add %d+%d" a b)
        ((a + b) land 0xF)
        !got
    done
  done

let test_multipliers () =
  List.iter
    (fun (name, build) ->
      List.iter
        (fun n ->
          let g : Aig.t = build n in
          for a = 0 to (1 lsl n) - 1 do
            for b = 0 to (1 lsl n) - 1 do
              let bits =
                Array.init (2 * n) (fun i ->
                    if i < n then (a lsr i) land 1 = 1
                    else (b lsr (i - n)) land 1 = 1)
              in
              let out = Aig.eval g bits in
              let got = ref 0 in
              Array.iteri (fun i v -> if v then got := !got lor (1 lsl i)) out;
              Alcotest.(check int)
                (Printf.sprintf "%s %d*%d (n=%d)" name a b n)
                (a * b) !got
            done
          done)
        [ 2; 3; 4 ])
    [ ("array", Circuits.Arith.multiplier_array);
      ("wallace", Circuits.Arith.multiplier_wallace) ]

let test_multiplier_depths () =
  Alcotest.(check bool) "wallace shallower at 8" true
    (Aig.depth (Circuits.Arith.multiplier_wallace 8)
     < Aig.depth (Circuits.Arith.multiplier_array 8))

let test_comparator () =
  let n = 5 in
  let g = Circuits.Arith.comparator n in
  for a = 0 to (1 lsl n) - 1 do
    for b = 0 to (1 lsl n) - 1 do
      let bits =
        Array.init (2 * n) (fun i ->
            if i < n then (a lsr i) land 1 = 1 else (b lsr (i - n)) land 1 = 1)
      in
      let out = Aig.eval g bits in
      Alcotest.(check bool) (Printf.sprintf "lt %d %d" a b) (a < b) out.(0);
      Alcotest.(check bool) (Printf.sprintf "eq %d %d" a b) (a = b) out.(1);
      Alcotest.(check bool) (Printf.sprintf "gt %d %d" a b) (a > b) out.(2)
    done
  done

let test_parity () =
  let n = 7 in
  let g = Circuits.Arith.parity_chain n in
  for v = 0 to (1 lsl n) - 1 do
    let bits = Array.init n (fun i -> (v lsr i) land 1 = 1) in
    let expected =
      let rec pop x acc = if x = 0 then acc else pop (x land (x - 1)) (not acc) in
      pop v false
    in
    Alcotest.(check bool) (Printf.sprintf "parity %d" v) expected
      (Aig.eval g bits).(0)
  done

let () =
  Alcotest.run "circuits"
    [
      ( "adders",
        [
          Alcotest.test_case "functional vs integers" `Quick test_adder_functional;
          Alcotest.test_case "depth ordering" `Quick test_adder_depths;
        ] );
      ( "suite",
        [
          Alcotest.test_case "interface counts" `Quick test_suite_interface_counts;
          Alcotest.test_case "deterministic" `Quick test_suite_deterministic;
        ] );
      ( "generators",
        [
          Alcotest.test_case "rotator" `Quick test_rotator;
          Alcotest.test_case "ecc" `Quick test_ecc_corrects;
          Alcotest.test_case "priority controller" `Quick test_priority_controller;
          Alcotest.test_case "alu add" `Quick test_alu_add;
        ] );
      ( "arith",
        [
          Alcotest.test_case "multipliers vs integers" `Quick test_multipliers;
          Alcotest.test_case "wallace is shallower" `Quick test_multiplier_depths;
          Alcotest.test_case "comparator" `Quick test_comparator;
          Alcotest.test_case "parity" `Quick test_parity;
        ] );
    ]
