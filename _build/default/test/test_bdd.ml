(* Tests for the BDD manager: algebra laws, canonicity, and a cross-check
   against truth tables on random functions. *)

module Tt = Logic.Tt

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_tt n =
  QCheck.make
    ~print:(fun t -> Tt.to_hex t)
    (QCheck.Gen.map
       (fun seed -> Tt.random (Random.State.make [| seed |]) n)
       QCheck.Gen.int)

(* Build the BDD of a truth table by applying it to the projection vars. *)
let bdd_of_tt man tt =
  let n = Tt.num_vars tt in
  Bdd.apply_tt man tt (Array.init n (fun i -> Bdd.var man i))

let test_canonicity () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  let a = Bdd.bor man x y in
  let b = Bdd.bnot man (Bdd.band man (Bdd.bnot man x) (Bdd.bnot man y)) in
  Alcotest.(check bool) "or = demorgan" true (Bdd.equal a b);
  let c = Bdd.bxor man x x in
  Alcotest.(check bool) "x xor x = false" true (Bdd.is_false man c)

let test_restrict_compose () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 and z = Bdd.var man 2 in
  let f = Bdd.bor man (Bdd.band man x y) z in
  Alcotest.(check bool) "f|x=0 = z... no, = z or nothing" true
    (Bdd.equal (Bdd.restrict man f 0 false) z);
  Alcotest.(check bool) "f|x=1 = y or z" true
    (Bdd.equal (Bdd.restrict man f 0 true) (Bdd.bor man y z));
  let g = Bdd.compose man f 0 z in
  Alcotest.(check bool) "compose x:=z" true
    (Bdd.equal g (Bdd.bor man (Bdd.band man z y) z))

let test_satcount () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  Alcotest.(check (float 1e-9)) "x over 2 vars" 2.0
    (Bdd.satcount man ~nvars:2 x);
  Alcotest.(check (float 1e-9)) "x&y over 3 vars" 2.0
    (Bdd.satcount man ~nvars:3 (Bdd.band man x y));
  Alcotest.(check (float 1e-9)) "true over 10" 1024.0
    (Bdd.satcount man ~nvars:10 (Bdd.btrue man))

let test_any_sat () =
  let man = Bdd.create () in
  let x = Bdd.var man 0 and y = Bdd.var man 1 in
  let f = Bdd.band man (Bdd.bnot man x) y in
  (match Bdd.any_sat man f with
   | Some asn ->
     Alcotest.(check bool) "x false" true (List.assoc 0 asn = false);
     Alcotest.(check bool) "y true" true (List.assoc 1 asn = true)
   | None -> Alcotest.fail "expected sat");
  Alcotest.(check bool) "false has no sat" true
    (Bdd.any_sat man (Bdd.bfalse man) = None)

let prop_tt_crosscheck =
  qtest "bdd matches tt through all ops" (QCheck.pair (gen_tt 7) (gen_tt 7))
    (fun (a, b) ->
      let man = Bdd.create () in
      let fa = bdd_of_tt man a and fb = bdd_of_tt man b in
      let pairs =
        [ (Tt.land_ a b, Bdd.band man fa fb);
          (Tt.lor_ a b, Bdd.bor man fa fb);
          (Tt.lxor_ a b, Bdd.bxor man fa fb);
          (Tt.lnot a, Bdd.bnot man fa) ]
      in
      List.for_all (fun (tt, bdd) -> Bdd.equal (bdd_of_tt man tt) bdd) pairs)

let prop_satcount_matches =
  qtest "satcount matches count_ones" (gen_tt 8) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      (* The manager may have fewer live vars; count over exactly 8. *)
      let n = List.length (List.init 8 Fun.id) in
      abs_float
        (Bdd.satcount man ~nvars:n f -. float_of_int (Tt.count_ones t))
      < 0.5)

let prop_support =
  qtest "support matches tt" (gen_tt 6) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      Bdd.support f = Tt.support t)

let prop_exists =
  qtest "exists matches tt" (gen_tt 6) (fun t ->
      let man = Bdd.create () in
      let f = bdd_of_tt man t in
      Bdd.equal (Bdd.exists man [ 2; 4 ] f)
        (bdd_of_tt man (Tt.exists (Tt.exists t 2) 4)))

let prop_implies =
  qtest "implies decision" (QCheck.pair (gen_tt 6) (gen_tt 6)) (fun (a, b) ->
      let man = Bdd.create () in
      let fa = bdd_of_tt man a and fb = bdd_of_tt man b in
      Bdd.implies man fa fb
      = Tt.is_const_false (Tt.land_ a (Tt.lnot b)))

let () =
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "restrict/compose" `Quick test_restrict_compose;
          Alcotest.test_case "satcount" `Quick test_satcount;
          Alcotest.test_case "any_sat" `Quick test_any_sat;
          prop_tt_crosscheck;
          prop_satcount_matches;
          prop_support;
          prop_exists;
          prop_implies;
        ] );
    ]
