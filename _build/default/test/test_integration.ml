(* Integration tests across the whole stack: generator -> optimizer ->
   mapper -> power, with equivalence enforced at every hop; plus the
   experiment-level invariants the benchmark harness relies on. *)

let full_flow name tool f =
  let g = Circuits.Suite.build name in
  let optimized = f g in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s equivalent" name tool)
    true
    (Aig.Cec.equivalent g optimized);
  let netlist = Techmap.Mapper.map optimized in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s mapping correct" name tool)
    true
    (Techmap.Mapper.check netlist);
  let delay = Techmap.Mapper.delay netlist in
  let power = Techmap.Power.dynamic_mw netlist in
  Alcotest.(check bool)
    (Printf.sprintf "%s/%s metrics sane" name tool)
    true
    (delay > 0.0 && power > 0.0);
  (optimized, delay)

let test_c432_all_tools () =
  let o_sis, d_sis = full_flow "C432" "sis" Baselines.sis_like in
  let o_abc, d_abc = full_flow "C432" "abc" Baselines.abc_like in
  let o_dc, d_dc = full_flow "C432" "dc" Baselines.dc_like in
  let o_la, d_la = full_flow "C432" "lookahead" Lookahead.optimize in
  (* The paper's ordering on the primary metric (AIG levels): lookahead
     at least matches the best baseline, and beats the weaker ones. *)
  Alcotest.(check bool) "levels: lookahead <= dc" true
    (Aig.depth o_la <= Aig.depth o_dc);
  Alcotest.(check bool) "levels: lookahead < abc" true
    (Aig.depth o_la < Aig.depth o_abc);
  Alcotest.(check bool) "levels: lookahead <= sis" true
    (Aig.depth o_la <= Aig.depth o_sis);
  (* Mapped delay tracks levels only up to load effects (a much smaller
     netlist can map faster at a worse depth, as SIS's C432 does), so the
     delay assertions are deliberately loose: lookahead must clearly beat
     the area-oriented script and stay in DC's neighbourhood. *)
  ignore d_sis;
  Alcotest.(check bool) "delay: lookahead within 20% of dc" true
    (d_la <= d_dc *. 1.2);
  Alcotest.(check bool) "delay: lookahead beats abc" true (d_la < d_abc)

let test_sparc_block () =
  ignore (full_flow "sparc_tlu_intctl_flat" "lookahead" Lookahead.optimize)

let test_ecc_block () =
  ignore (full_flow "C1908" "lookahead" Lookahead.optimize)

let test_blif_roundtrip_through_flow () =
  (* Export/import sits in the middle of the flow without changing it. *)
  let g = Circuits.Suite.build "C432" in
  let text = Aig.Io.blif_to_string g in
  let g' = Aig.Io.read_blif text in
  Alcotest.(check bool) "reparse equivalent" true (Aig.Cec.equivalent g g');
  let opt = Baselines.dc_like g' in
  Alcotest.(check bool) "optimize after reparse" true (Aig.Cec.equivalent g opt)

let test_adder_experiment_invariants () =
  (* The invariants Table 1 depends on, for one size. *)
  let n = 8 in
  let rca = Circuits.Adders.ripple_carry n in
  let la = Lookahead.optimize rca in
  let dc = Baselines.dc_like rca in
  let abc = Baselines.abc_like rca in
  Alcotest.(check bool) "lookahead <= dc" true (Aig.depth la <= Aig.depth dc);
  Alcotest.(check bool) "dc < abc" true (Aig.depth dc < Aig.depth abc);
  Alcotest.(check bool) "lookahead near optimum" true
    (Aig.depth la <= Circuits.Adders.optimum_levels n)

let test_optimize_then_map_improves_delay () =
  let g = Circuits.Adders.ripple_carry 8 in
  let before = Techmap.Mapper.delay (Techmap.Mapper.map g) in
  let after = Techmap.Mapper.delay (Techmap.Mapper.map (Lookahead.optimize g)) in
  Alcotest.(check bool)
    (Printf.sprintf "mapped delay %.1f -> %.1f improves" before after)
    true (after < before)

let () =
  Alcotest.run "integration"
    [
      ( "full-flow",
        [
          Alcotest.test_case "C432 all tools" `Slow test_c432_all_tools;
          Alcotest.test_case "sparc block" `Slow test_sparc_block;
          Alcotest.test_case "ecc block" `Slow test_ecc_block;
          Alcotest.test_case "blif in the middle" `Quick
            test_blif_roundtrip_through_flow;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "adder invariants" `Slow test_adder_experiment_invariants;
          Alcotest.test_case "mapped delay improves" `Slow
            test_optimize_then_map_improves_delay;
        ] );
    ]
