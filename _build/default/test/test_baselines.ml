(* Tests for the baseline optimizers: equivalence preservation and the
   relative behaviour the paper's Table 2 relies on. *)

let qtest ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let gen_seed = QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 100000)

let random_aig ?(inputs = 6) ?(gates = 60) ?(outputs = 3) seed =
  let st = Random.State.make [| seed; inputs; gates |] in
  let g = Aig.create () in
  let ins = Array.init inputs (fun _ -> Aig.add_input g) in
  let pool = ref (Array.to_list ins) in
  let pick () =
    let l = List.nth !pool (Random.State.int st (List.length !pool)) in
    if Random.State.bool st then Aig.bnot l else l
  in
  for _ = 1 to gates do
    pool := Aig.band g (pick ()) (pick ()) :: !pool
  done;
  for i = 0 to outputs - 1 do
    Aig.add_output g (Printf.sprintf "y%d" i) (pick ())
  done;
  g

let prop_equivalent name f =
  qtest (name ^ " preserves function") gen_seed (fun seed ->
      let g = random_aig seed in
      Aig.Cec.equivalent g (f g))

let test_by_name () =
  Alcotest.(check bool) "sis" true (Baselines.by_name "sis" <> None);
  Alcotest.(check bool) "abc" true (Baselines.by_name "abc" <> None);
  Alcotest.(check bool) "dc" true (Baselines.by_name "dc" <> None);
  Alcotest.(check bool) "unknown" true (Baselines.by_name "vivado" = None)

let test_dc_is_delay_oriented () =
  (* On the ripple-carry adder the delay-oriented baseline must beat the
     area-oriented one in depth — the ordering the paper's Table 2 shows. *)
  let g = Circuits.Adders.ripple_carry 8 in
  let dc = Baselines.dc_like g in
  let abc = Baselines.abc_like g in
  Alcotest.(check bool) "dc shallower than abc" true (Aig.depth dc < Aig.depth abc);
  Alcotest.(check bool) "dc improves the input" true (Aig.depth dc < Aig.depth g)

let test_abc_is_area_oriented () =
  (* resyn2rs recovers area: the node count should not grow much. *)
  let g = Circuits.Suite.build "C432" in
  let abc = Baselines.abc_like g in
  Alcotest.(check bool) "area within 1.2x" true
    (float_of_int (Aig.num_reachable_ands abc)
     <= 1.2 *. float_of_int (Aig.num_reachable_ands g))

let test_equivalence_on_benchmarks () =
  List.iter
    (fun name ->
      let g = Circuits.Suite.build name in
      List.iter
        (fun (tool, f) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s equivalent" name tool)
            true
            (Aig.Cec.equivalent g (f g)))
        [
          ("sis", Baselines.sis_like);
          ("abc", Baselines.abc_like);
          ("dc", Baselines.dc_like);
        ])
    [ "C432"; "C1908" ]

let () =
  Alcotest.run "baselines"
    [
      ( "equivalence",
        [
          prop_equivalent "sis_like" Baselines.sis_like;
          prop_equivalent "abc_like" Baselines.abc_like;
          prop_equivalent "dc_like" Baselines.dc_like;
          Alcotest.test_case "benchmarks" `Quick test_equivalence_on_benchmarks;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "dc delay-oriented" `Quick test_dc_is_delay_oriented;
          Alcotest.test_case "abc area-oriented" `Quick test_abc_is_area_oriented;
        ] );
    ]
