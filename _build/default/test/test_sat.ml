(* Tests for the CDCL SAT solver, including a brute-force cross-check on
   random 3-CNF instances. *)

module Solver = Sat.Solver

let qtest ?(count = 150) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

let test_trivial () =
  let s = Solver.create () in
  Solver.add_clause s [ 1 ];
  Alcotest.(check bool) "unit sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "model" true (Solver.value s 1);
  Solver.add_clause s [ -1 ];
  Alcotest.(check bool) "contradiction" true (Solver.solve s = Solver.Unsat)

let test_simple_implications () =
  let s = Solver.create () in
  (* (x1 -> x2) and (x2 -> x3) and x1 *)
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; 3 ];
  Solver.add_clause s [ 1 ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "x3 forced" true (Solver.value s 3)

let test_pigeonhole_3_2 () =
  (* 3 pigeons, 2 holes: unsatisfiable. Variable p_ij = pigeon i in hole j. *)
  let s = Solver.create () in
  let v i j = (i * 2) + j + 1 in
  for i = 0 to 2 do
    Solver.add_clause s [ v i 0; v i 1 ]
  done;
  for j = 0 to 1 do
    for i = 0 to 2 do
      for k = i + 1 to 2 do
        Solver.add_clause s [ -v i j; -v k j ]
      done
    done
  done;
  Alcotest.(check bool) "php(3,2) unsat" true (Solver.solve s = Solver.Unsat)

let test_assumptions () =
  let s = Solver.create () in
  Solver.add_clause s [ -1; 2 ];
  Solver.add_clause s [ -2; -3 ];
  Alcotest.(check bool) "sat under x1 x3... no wait"
    true
    (Solver.solve ~assumptions:[ 1; 3 ] s = Solver.Unsat);
  Alcotest.(check bool) "sat under x1" true
    (Solver.solve ~assumptions:[ 1 ] s = Solver.Sat);
  Alcotest.(check bool) "still incremental" true
    (Solver.solve ~assumptions:[ 3 ] s = Solver.Sat)

let gen_cnf =
  let open QCheck.Gen in
  let lit nvars = map2 (fun v s -> if s then v else -v) (int_range 1 nvars) bool in
  let clause nvars = list_size (int_range 1 3) (lit nvars) in
  let cnf =
    int_range 1 8 >>= fun nvars ->
    list_size (int_range 1 25) (clause nvars) >>= fun cls ->
    return (nvars, cls)
  in
  QCheck.make
    ~print:(fun (n, cls) ->
      Printf.sprintf "nvars=%d cnf=%s" n
        (String.concat " & "
           (List.map
              (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
              cls)))
    cnf

let brute_force_sat nvars cls =
  let eval_clause asn c =
    List.exists (fun l -> if l > 0 then asn.(l - 1) else not asn.(-l - 1)) c
  in
  let rec loop m =
    if m >= 1 lsl nvars then false
    else
      let asn = Array.init nvars (fun i -> (m lsr i) land 1 = 1) in
      if List.for_all (eval_clause asn) cls then true else loop (m + 1)
  in
  loop 0

let prop_random_cnf =
  qtest ~count:400 "solver agrees with brute force" gen_cnf (fun (nvars, cls) ->
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cls;
      let expected = brute_force_sat nvars cls in
      let got = Solver.solve s = Solver.Sat in
      (* When SAT, also validate the model. *)
      (if got then
         let ok =
           List.for_all
             (fun c ->
               List.exists
                 (fun l ->
                   if l > 0 then Solver.value s l else not (Solver.value s (-l)))
                 c)
             cls
         in
         if not ok then QCheck.Test.fail_report "invalid model");
      got = expected)

let prop_incremental =
  qtest ~count:100 "incremental solving is consistent" gen_cnf
    (fun (nvars, cls) ->
      let s = Solver.create () in
      List.iter (Solver.add_clause s) cls;
      let r1 = Solver.solve s in
      let r2 = Solver.solve s in
      ignore nvars;
      r1 = r2)

let () =
  Alcotest.run "sat"
    [
      ( "solver",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "implication chain" `Quick test_simple_implications;
          Alcotest.test_case "pigeonhole 3-2" `Quick test_pigeonhole_3_2;
          Alcotest.test_case "assumptions" `Quick test_assumptions;
          prop_random_cnf;
          prop_incremental;
        ] );
    ]
